(* Heap-sizing controllers: spec parsing and rendering, decision
   behaviour, safe capacity moves on the region heap, bit-identity of the
   Fixed/passive paths across the collector frontier, and the memory
   market's aggregate accounting. *)

module Controller = Gcr_policy.Controller
module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Market = Gcr_core.Market
module Obs = Gcr_obs.Obs
module Engine = Gcr_engine.Engine

let check = Alcotest.check

(* ---------- spec: names and cache-key rendering ---------- *)

let test_of_name () =
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " resolves") true (Controller.of_name n <> None))
    Controller.valid_names;
  check Alcotest.bool "case-insensitive" true
    (Controller.of_name "MemBalancer" = Some Controller.membalancer);
  check Alcotest.bool "none aliases fixed" true
    (Controller.of_name "none" = Some Controller.fixed);
  check Alcotest.bool "off aliases fixed" true
    (Controller.of_name "off" = Some Controller.fixed);
  check Alcotest.bool "sqrt aliases membalancer" true
    (Controller.of_name "sqrt" = Some Controller.membalancer);
  check Alcotest.bool "opportunistic aliases monk" true
    (Controller.of_name "opportunistic" = Some Controller.monk);
  check Alcotest.bool "unknown rejected" true (Controller.of_name "bogus" = None);
  List.iter
    (fun n ->
      let c = Option.get (Controller.of_name n) in
      check Alcotest.string "canonical name round-trips" n
        (Controller.name c))
    Controller.valid_names

(* Distinct specs must render distinctly: the render string is the cache
   key's controller field, and a collision would replay one controller's
   measurement as another's. *)
let test_render_distinct () =
  let specs =
    [
      Controller.fixed;
      Controller.membalancer;
      Controller.monk;
      Controller.Membalancer { tuning = 1024.0; min_period = Controller.default_min_period };
      Controller.Membalancer { tuning = 65536.0; min_period = 1 };
      Controller.Monk { target_overhead = 0.20; band = 0.5; min_period = Controller.default_min_period };
      Controller.Monk { target_overhead = 0.08; band = 0.1; min_period = Controller.default_min_period };
    ]
  in
  let renders = List.map Controller.render specs in
  List.iteri
    (fun i ri ->
      List.iteri
        (fun j rj ->
          if i < j then
            check Alcotest.bool
              (Printf.sprintf "render %d vs %d distinct" i j)
              true (not (String.equal ri rj)))
        renders)
    renders

(* ---------- decisions: rate limit, dead band, clamps ---------- *)

let sample ~now ~live ~capacity ~gc ~mutator =
  {
    Controller.now;
    live_words = live;
    capacity_words = capacity;
    allocated_words = 0;
    gc_cycles = gc;
    mutator_cycles = mutator;
  }

let test_rate_limit () =
  let c = Controller.make Controller.membalancer ~min_heap_words:128 ~max_heap_words:1_000_000 in
  (* before min_period elapses no decision fires, however hot GC runs *)
  check Alcotest.bool "early sample suppressed" true
    (Controller.observe c (sample ~now:50_000 ~live:10_000 ~capacity:12_000 ~gc:40_000 ~mutator:10_000)
     = None);
  (* past the period, a hot GC fraction grows the heap *)
  (match
     Controller.observe c
       (sample ~now:200_000 ~live:10_000 ~capacity:12_000 ~gc:100_000 ~mutator:100_000)
   with
  | Some w -> check Alcotest.bool "grows above current" true (w > 12_000)
  | None -> Alcotest.fail "expected a grow decision");
  (* immediately after a decision the limiter re-arms *)
  check Alcotest.bool "follow-up suppressed" true
    (Controller.observe c
       (sample ~now:210_000 ~live:10_000 ~capacity:20_000 ~gc:110_000 ~mutator:105_000)
     = None)

let test_fixed_never_decides () =
  let c = Controller.make Controller.fixed ~min_heap_words:128 ~max_heap_words:1_000_000 in
  check Alcotest.bool "fixed is silent" true
    (Controller.observe c
       (sample ~now:10_000_000 ~live:10_000 ~capacity:12_000 ~gc:9_000_000 ~mutator:1)
     = None)

let test_monk_dead_band () =
  let mk () = Controller.make Controller.monk ~min_heap_words:128 ~max_heap_words:1_000_000 in
  (* hot: gc fraction far above the 8% target -> grow *)
  (match
     Controller.observe (mk ())
       (sample ~now:200_000 ~live:50_000 ~capacity:100_000 ~gc:100_000 ~mutator:100_000)
   with
  | Some w -> check Alcotest.bool "hot grows" true (w > 100_000)
  | None -> Alcotest.fail "expected a grow decision");
  (* cold: essentially no GC -> shrink (clamped to live + headroom) *)
  (match
     Controller.observe (mk ())
       (sample ~now:200_000 ~live:50_000 ~capacity:100_000 ~gc:0 ~mutator:200_000)
   with
  | Some w ->
      check Alcotest.bool "cold shrinks" true (w < 100_000);
      check Alcotest.bool "never below live + headroom" true (w >= 50_000 + (50_000 / 4))
  | None -> Alcotest.fail "expected a shrink decision");
  (* in band: 8% +/- 50% -> no decision *)
  check Alcotest.bool "in-band is silent" true
    (Controller.observe (mk ())
       (sample ~now:200_000 ~live:50_000 ~capacity:100_000 ~gc:16_000 ~mutator:184_000)
     = None)

let test_clamps () =
  let c =
    Controller.make
      (Controller.Membalancer { tuning = 1.0e18; min_period = 1 })
      ~min_heap_words:128 ~max_heap_words:40_000
  in
  (* an absurd tuning wants an enormous heap; the machine bound caps it *)
  match
    Controller.observe c
      (sample ~now:200_000 ~live:10_000 ~capacity:12_000 ~gc:100_000 ~mutator:100_000)
  with
  | Some w -> check Alcotest.int "capped at machine memory" 40_000 w
  | None -> Alcotest.fail "expected a decision"

(* ---------- Heap.set_capacity: safe grow/shrink at a safepoint ---------- *)

let region_words = 64

(* A heap with [taken] regions occupied (one small object each) and the
   rest free, mimicking a mid-run safepoint. *)
let occupied_heap ~regions ~taken =
  let h = Heap.create ~capacity_words:(regions * region_words) ~region_words () in
  let objs =
    List.init taken (fun _ ->
        let r = Option.get (Heap.take_free_region h ~space:Region.Old) in
        let o = Heap.alloc_in_region h r ~size:8 ~nfields:0 in
        assert (not (Obj_model.is_null o));
        o)
  in
  (h, objs)

let prop_set_capacity_safe =
  QCheck.Test.make ~name:"set_capacity preserves live set and digest" ~count:200
    QCheck.(triple (int_range 2 24) (int_range 0 24) (int_range 0 64))
    (fun (regions, taken, target_regions) ->
      let taken = min taken regions in
      let h, objs = occupied_heap ~regions ~taken in
      let digest_before = Heap.history_digest h in
      let live_before = Heap.live_words_exact h in
      let returned =
        Heap.set_capacity h ~capacity_words:(target_regions * region_words) ~cause_id:0
      in
      (* every object survives the move *)
      List.for_all (Heap.is_live h) objs
      && Heap.live_words_exact h = live_before
      (* the history digest never sees a resize *)
      && Heap.history_digest h = digest_before
      (* geometry invariants: the return value is the real capacity, at
         least two regions, and never below the occupied prefix *)
      && returned = Heap.capacity_words h
      && Heap.total_regions h >= 2
      && Heap.total_regions h >= taken
      && Heap.free_regions h = Heap.total_regions h - taken
      (* and a grow request is honoured exactly *)
      && (target_regions <= regions
         || Heap.total_regions h = max 2 target_regions))

let test_shrink_clamps_to_live () =
  let h, objs = occupied_heap ~regions:8 ~taken:5 in
  (* asking for one region clamps to the five occupied (never raises) *)
  let w = Heap.set_capacity h ~capacity_words:region_words ~cause_id:0 in
  check Alcotest.int "clamped to occupied prefix" (5 * region_words) w;
  check Alcotest.int "regions" 5 (Heap.total_regions h);
  check Alcotest.bool "live set intact" true (List.for_all (Heap.is_live h) objs);
  (* growing back restores free regions *)
  let w = Heap.set_capacity h ~capacity_words:(10 * region_words) ~cause_id:0 in
  check Alcotest.int "regrown" (10 * region_words) w;
  check Alcotest.int "free regions" 5 (Heap.free_regions h);
  (* the freed regions are allocatable *)
  check Alcotest.bool "new region usable" true
    (Heap.take_free_region h ~space:Region.Eden <> None)

(* ---------- Fixed / passive wiring is invisible, frontier-wide ---------- *)

let tiny = Spec.scale (Suite.find_exn "jme") 0.05

let tiny_config ~gc ~controller =
  let heap_words = 40_000 in
  { (Run.default_config ~spec:tiny ~gc ~heap_words ~seed:11) with Run.controller }

let execute_with_fingerprint config =
  let captured = ref None in
  let on_engine engine = captured := Some (Engine.obs engine) in
  let m = Run.execute ~on_engine config in
  let fp =
    match !captured with
    | Some obs -> Obs.fingerprint obs ~now:(Obs.now obs)
    | None -> []
  in
  (m, fp)

(* A controller that subscribes (samples the heap at every pause end) but
   whose rate limit never lets a decision fire.  If the wiring itself
   perturbed the run — an extra event, a counter nudge, an interned
   string leaking into the fingerprint — this catches it on every
   collector in the frontier. *)
let passive =
  Controller.Membalancer { tuning = 65536.0; min_period = max_int }

let test_fixed_bit_identical_frontier () =
  List.iter
    (fun gc ->
      let name = Registry.name gc in
      let m_fixed, fp_fixed =
        execute_with_fingerprint (tiny_config ~gc ~controller:Controller.fixed)
      in
      let m_passive, fp_passive =
        execute_with_fingerprint (tiny_config ~gc ~controller:passive)
      in
      check Alcotest.bool (name ^ ": measurements bit-identical") true
        (m_fixed = m_passive);
      check (Alcotest.list Alcotest.int) (name ^ ": fingerprints identical") fp_fixed
        fp_passive;
      check Alcotest.int (name ^ ": fixed moves no limits") 0
        m_fixed.Measurement.limit_changes)
    Registry.frontier

(* Active controllers stay deterministic and safe: same config, same
   measurement, and the run completes with the limit trajectory recorded. *)
let test_active_deterministic () =
  List.iter
    (fun controller ->
      let config = tiny_config ~gc:Registry.G1 ~controller in
      let a = Run.execute config and b = Run.execute config in
      let name = Controller.name controller in
      check Alcotest.bool (name ^ ": deterministic") true (a = b);
      check Alcotest.bool (name ^ ": completed") true
        (a.Measurement.outcome = Measurement.Completed);
      (* peak is region-rounded, so compare against the region floor of
         the configured heap rather than the raw word count *)
      check Alcotest.bool (name ^ ": peak recorded") true
        (a.Measurement.heap_limit_peak_words > 0))
    [ Controller.membalancer; Controller.monk ]

(* ---------- market smoke: determinism and aggregate accounting ---------- *)

let test_market_accounting () =
  let run () =
    Market.run ~tenants:2 ~gc:Registry.G1 ~controller:Controller.membalancer
      ~budget_factor:0.9 ~scale:0.05 ~seed:5 ()
  in
  let r = run () in
  check Alcotest.int "two tenants" 2 (List.length r.Market.per_tenant);
  check Alcotest.bool "all completed" true
    (List.for_all (fun t -> t.Market.completed) r.Market.per_tenant);
  check Alcotest.int "requests sum" r.Market.total_requests
    (List.fold_left (fun acc t -> acc + t.Market.requests) 0 r.Market.per_tenant);
  check Alcotest.int "misses sum" r.Market.total_deadline_misses
    (List.fold_left (fun acc t -> acc + t.Market.deadline_misses) 0 r.Market.per_tenant);
  check Alcotest.bool "requests flowed" true (r.Market.total_requests > 0);
  (* the broker may exceed the budget only through the live + 25% floors
     (it never shrinks a tenant below its live set), so the peak stays
     bounded — it cannot run away past the tenants' combined peaks *)
  check Alcotest.bool "peak footprint recorded" true
    (r.Market.peak_total_words > 0
    && r.Market.peak_total_words
       <= List.fold_left (fun acc t -> acc + t.Market.peak_words) 0 r.Market.per_tenant);
  (* equal arguments, equal report *)
  check Alcotest.bool "deterministic" true (run () = r)

let suite =
  [
    Alcotest.test_case "of_name aliases" `Quick test_of_name;
    Alcotest.test_case "render is injective" `Quick test_render_distinct;
    Alcotest.test_case "decision rate limit" `Quick test_rate_limit;
    Alcotest.test_case "fixed never decides" `Quick test_fixed_never_decides;
    Alcotest.test_case "monk dead band" `Quick test_monk_dead_band;
    Alcotest.test_case "decisions clamp to machine" `Quick test_clamps;
    QCheck_alcotest.to_alcotest prop_set_capacity_safe;
    Alcotest.test_case "shrink clamps to live regions" `Quick test_shrink_clamps_to_live;
    Alcotest.test_case "fixed == passive across frontier" `Slow
      test_fixed_bit_identical_frontier;
    Alcotest.test_case "active controllers deterministic" `Quick
      test_active_deterministic;
    Alcotest.test_case "market aggregate accounting" `Quick test_market_accounting;
  ]
