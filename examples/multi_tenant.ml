(* Opportunity cost: the paper's Section IV-D a.

   A collector that looks fast because it parallelises its pauses is
   spending cycles some other tenant could have used.  This example runs
   the same benchmark on a dedicated 16-CPU machine and on a slice of 4
   CPUs (a multi-tenant host), for Serial (frugal in cycles) and Parallel
   (frugal in wall time).  On the big machine Parallel wins wall-clock; on
   the small slice its cycle hunger turns into wall-clock pain.

     dune exec examples/multi_tenant.exe *)

module Registry = Gcr_gcs.Registry
module Machine = Gcr_mach.Machine
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Minheap = Gcr_core.Minheap
module Units = Gcr_util.Units

let run ~gc ~cpus ~spec ~heap_words =
  let machine = Machine.with_cpus Machine.default cpus in
  let config =
    { (Run.default_config ~spec ~gc ~heap_words ~seed:3) with Run.machine }
  in
  Run.execute config

let () =
  (* A parallel benchmark with enough threads to keep a big machine busy. *)
  let spec = Spec.scale (Suite.find_exn "sunflow") 0.5 in
  let heap_words = 2 * Minheap.find spec in
  Printf.printf "sunflow (scaled) at 2.0x minimum heap, %d mutator threads\n\n"
    spec.Spec.mutator_threads;
  Printf.printf "%-10s %6s %14s %16s %12s\n" "collector" "cpus" "wall (ms)"
    "total Gcycles" "GC Mcycles";
  List.iter
    (fun cpus ->
      List.iter
        (fun gc ->
          let m = run ~gc ~cpus ~spec ~heap_words in
          let status = if Measurement.completed m then "" else "  (failed)" in
          Printf.printf "%-10s %6d %14.2f %16.3f %12.1f%s\n"
            (Registry.name gc) cpus
            (Units.ms_of_cycles m.Measurement.wall_total)
            (float_of_int (Measurement.cycles_total m) /. 1e9)
            (float_of_int m.Measurement.cycles_gc /. 1e6)
            status)
        [ Registry.Serial; Registry.Parallel ];
      print_newline ())
    [ 16; 4 ];
  print_endline
    "Reading: on 16 CPUs, Parallel's extra GC cycles hide in idle hardware and it\n\
     beats Serial on wall-clock time.  On a 4-CPU slice there is no idle hardware\n\
     to hide in: every extra GC cycle displaces mutator work, and the gap narrows\n\
     or reverses — the opportunity cost the wall-clock-only methodology misses."
