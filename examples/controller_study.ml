(* The memory·time cost of a heap limit: does an adaptive controller
   beat the best fixed heap you could have picked in hindsight?

   A fixed limit pays for its headroom all run long; an adaptive
   controller (membalancer's square-root rule, monk's dead-band trading)
   only rents the memory the current phase needs.  The scalar under
   comparison is the memory·time integral (word·cycles) — the same
   footprint-over-time product cloud billing charges for.

     dune exec examples/controller_study.exe [benchmark] *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Minheap = Gcr_core.Minheap
module Controller = Gcr_policy.Controller
module Units = Gcr_util.Units

let fixed_factors = [ 1.4; 2.0; 3.0; 4.0; 6.0 ]

(* Adaptive controllers start from the same generous limit the cautious
   operator would pick; what they do with it is the experiment. *)
let start_factor = 2.0

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "jme" in
  let gc = Registry.G1 in
  let spec = Spec.scale (Suite.find_exn bench) 0.5 in
  let minheap = Minheap.find spec in
  Printf.printf "%s (scaled) under %s: minimum heap %d words\n\n" bench
    (Registry.name gc) minheap;
  let run ~factor ~controller =
    let heap_words = int_of_float (factor *. float_of_int minheap) in
    Run.execute
      { (Run.default_config ~spec ~gc ~heap_words ~seed:9) with Run.controller }
  in
  let line label (m : Measurement.t) =
    Printf.printf "%-18s %10.2f %12.0f %12.0f %8d %14.3e%s\n" label
      (Units.ms_of_cycles m.Measurement.wall_total)
      (Measurement.mean_footprint_words m)
      (float_of_int m.Measurement.heap_limit_peak_words)
      m.Measurement.limit_changes
      (Measurement.memory_time_integral m)
      (if Measurement.completed m then "" else "  (failed)")
  in
  Printf.printf "%-18s %10s %12s %12s %8s %14s\n" "limit policy" "wall (ms)"
    "mean words" "peak words" "moves" "memory-time";
  let fixed_runs =
    List.map
      (fun factor ->
        let m = run ~factor ~controller:Controller.fixed in
        line (Printf.sprintf "fixed %.1fx" factor) m;
        m)
      fixed_factors
  in
  let adaptive =
    List.map
      (fun controller ->
        let m = run ~factor:start_factor ~controller in
        line
          (Printf.sprintf "%s (from %.1fx)" (Controller.name controller) start_factor)
          m;
        m)
      [ Controller.membalancer; Controller.monk ]
  in
  (* rent-weight sensitivity around the default (4096): cheaper rent
     buys more headroom, dearer rent hugs the live set *)
  List.iter
    (fun tuning ->
      let c = Controller.Membalancer { tuning; min_period = Controller.default_min_period } in
      let m = run ~factor:start_factor ~controller:c in
      line (Printf.sprintf "mb tuning=%.0f" tuning) m)
    [ 1024.; 16384.; 65536. ];
  let mt m = Measurement.memory_time_integral m in
  let best_fixed =
    List.fold_left
      (fun acc m -> if Measurement.completed m && mt m < mt acc then m else acc)
      (List.hd fixed_runs) (List.tl fixed_runs)
  in
  print_newline ();
  List.iteri
    (fun i m ->
      if Measurement.completed m then
        Printf.printf "%-12s memory-time vs best fixed (%.3e): %.2fx at %+.1f%% wall\n"
          (Controller.name (List.nth [ Controller.membalancer; Controller.monk ] i))
          (mt best_fixed) (mt m /. mt best_fixed)
          (100.0
          *. (float_of_int m.Measurement.wall_total
              /. float_of_int best_fixed.Measurement.wall_total
             -. 1.0)))
    adaptive;
  print_endline
    "\nReading: every fixed row pays for its full limit all run long, so the\n\
     memory-time bill is the limit times the wall clock; the adaptive rows\n\
     rent headroom only while the allocation rate demands it, shrinking\n\
     toward the live set in quiet phases.  Below 1.00x the controller beat\n\
     the best constant limit chosen in hindsight."
