(* The time-space tradeoff (paper Figure 1 / Table VI shape): sweep the
   heap size for one benchmark and watch every collector's overhead fall
   as memory grows — at different rates, so the winner changes.

     dune exec examples/heap_sweep.exe [benchmark] *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Minheap = Gcr_core.Minheap
module Metrics = Gcr_core.Metrics
module Lbo = Gcr_core.Lbo
module Tablefmt = Gcr_util.Tablefmt

let factors = [ 1.4; 1.9; 2.4; 3.0; 4.4; 6.0 ]

let collectors = Registry.production

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "pmd" in
  let spec = Spec.scale (Suite.find_exn bench) 0.5 in
  let minheap = Minheap.find spec in
  Printf.printf "%s (scaled): minimum heap %d words\n%!" bench minheap;
  (* One invocation of every collector at every factor, plus Epsilon for
     the LBO baseline. *)
  let epsilon = Run.execute (Run.default_config ~spec ~gc:Registry.Epsilon ~heap_words:0 ~seed:9) in
  let cell gc factor =
    let heap_words = int_of_float (factor *. float_of_int minheap) in
    Run.execute (Run.default_config ~spec ~gc ~heap_words ~seed:9)
  in
  let grid = List.map (fun gc -> (gc, List.map (cell gc) factors)) collectors in
  let table metric title =
    let t = Tablefmt.create ~title ~columns:(List.map (Printf.sprintf "%.1fx") factors) in
    List.iter
      (fun (gc, runs) ->
        let observations =
          epsilon :: List.concat_map (fun (_, runs) -> runs) grid
          |> List.filter Measurement.completed
          |> List.map (fun m -> Option.get (Lbo.observation metric [ m ]))
        in
        let ideal = Lbo.ideal_estimate observations in
        let cells =
          List.map
            (fun (m : Measurement.t) ->
              if Measurement.completed m then
                Tablefmt.Num (Lbo.lbo ~ideal ~total:(Metrics.total metric m), 2)
              else Tablefmt.Missing)
            runs
        in
        Tablefmt.add_row t ~label:(Registry.name gc) cells)
      grid;
    Tablefmt.mark_best_in_column t ~min:true;
    Tablefmt.print t
  in
  table Metrics.Wall_time "Time LBO vs heap size (lower is better; * best per size)";
  table Metrics.Cpu_cycles "Cycle LBO vs heap size (lower is better; * best per size)";
  print_endline
    "Reading: every column is the fundamental time-space tradeoff; comparing the\n\
     two tables shows collectors whose wall-clock price is paid in hidden cycles."
