(* Latency study: "low pause != low latency" (paper Section IV-D c).

   Runs the latency-sensitive lusearch benchmark under a stop-the-world
   collector (Parallel), the concurrent tracing collector (G1) and the
   low-pause collectors (Shenandoah, ZGC), then prints both the pause-time
   distribution and the metered request-latency distribution side by side.
   The low-pause collectors win the first table and can still lose the
   second — the paper's central misinterpretation warning.

     dune exec examples/latency_study.exe *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Minheap = Gcr_core.Minheap
module Stats = Gcr_util.Stats
module Histogram = Gcr_util.Histogram
module Units = Gcr_util.Units
module Tablefmt = Gcr_util.Tablefmt

let collectors = [ Registry.Parallel; Registry.G1; Registry.Shenandoah; Registry.Zgc ]

let percentiles = [ 50.0; 90.0; 99.0; 99.9 ]

let () =
  let spec = Spec.scale (Suite.find_exn "lusearch") 0.5 in
  let heap_words = 3 * Minheap.find spec in
  Printf.printf "lusearch (scaled) at 3.0x minimum heap = %d words\n%!" heap_words;
  let results =
    List.map
      (fun gc ->
        (gc, Run.execute (Run.default_config ~spec ~gc ~heap_words ~seed:7)))
      collectors
  in
  List.iter
    (fun (gc, m) ->
      if not (Measurement.completed m) then
        Printf.printf "note: %s failed this configuration\n" (Registry.name gc))
    results;
  (* Table 1: GC pause times — the metric GC tuning guides point at. *)
  let pause_table =
    Tablefmt.create ~title:"GC pause time (ms) -- the naive suitability metric"
      ~columns:(List.map (fun p -> Printf.sprintf "p%g" p) percentiles)
  in
  List.iter
    (fun (gc, (m : Measurement.t)) ->
      let pauses =
        Array.of_list
          (List.map
             (fun (p : Gcr_engine.Engine.pause) -> float_of_int p.duration)
             m.Measurement.pauses)
      in
      let cells =
        List.map
          (fun p ->
            if Array.length pauses = 0 then Tablefmt.Missing
            else
              Tablefmt.Num (Units.ms_of_cycles (int_of_float (Stats.percentile pauses p)), 4))
          percentiles
      in
      Tablefmt.add_row pause_table ~label:(Registry.name gc) cells)
    results;
  Tablefmt.mark_best_in_column pause_table ~min:true;
  Tablefmt.print pause_table;
  (* Table 2: metered request latency — what the application actually
     experiences. *)
  let latency_table =
    Tablefmt.create
      ~title:"Metered query latency (ms) -- what requests actually experience"
      ~columns:(List.map (fun p -> Printf.sprintf "p%g" p) percentiles)
  in
  List.iter
    (fun (gc, (m : Measurement.t)) ->
      let cells =
        match m.Measurement.latency_metered with
        | Some h when not (Histogram.is_empty h) ->
            List.map
              (fun p -> Tablefmt.Num (Units.ms_of_cycles (Histogram.percentile h p), 4))
              percentiles
        | Some _ | None -> List.map (fun _ -> Tablefmt.Missing) percentiles
      in
      Tablefmt.add_row latency_table ~label:(Registry.name gc) cells)
    results;
  Tablefmt.mark_best_in_column latency_table ~min:true;
  Tablefmt.print latency_table;
  print_endline
    "If a low-pause collector wins the first table but not the second, you have\n\
     reproduced the paper's warning: pause time is a poor proxy for application\n\
     latency once barrier costs, concurrent CPU theft and allocation stalls are\n\
     accounted for."
