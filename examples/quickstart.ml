(* Quickstart: run one benchmark under every collector and compute its
   lower-bound overheads — the whole public API in thirty lines.

     dune exec examples/quickstart.exe *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Measurement = Gcr_runtime.Measurement
module Minheap = Gcr_core.Minheap
module Metrics = Gcr_core.Metrics
module Lbo = Gcr_core.Lbo

let () =
  (* A scaled-down h2 so the example runs in a couple of seconds. *)
  let spec = Spec.scale (Suite.find_exn "h2") 0.3 in
  Printf.printf "workload: %s\n" (Format.asprintf "%a" Spec.pp spec);
  (* The paper sizes heaps relative to the minimum heap, measured with G1. *)
  let minheap = Minheap.find spec in
  let heap_words = 3 * minheap in
  Printf.printf "minimum heap (G1): %d words; running at 3.0x = %d words\n\n" minheap
    heap_words;
  (* One invocation per collector; Epsilon included as the no-op baseline. *)
  let measurements =
    List.map
      (fun gc -> Run.execute (Run.default_config ~spec ~gc ~heap_words ~seed:42))
      Registry.all
  in
  List.iter (fun m -> Format.printf "%a@." Measurement.pp m) measurements;
  (* The LBO methodology: estimate the ideal cost from the cheapest
     non-GC portion of any collector's run, then bound each overhead. *)
  print_newline ();
  List.iter
    (fun metric ->
      let observations = List.filter_map (fun m -> Lbo.observation metric [ m ]) measurements in
      Printf.printf "%s lower-bound overheads:\n" (Metrics.name metric);
      List.iter
        (fun (o, lbo) -> Printf.printf "  %-12s %.3f\n" o.Lbo.collector lbo)
        (Lbo.compute observations))
    [ Metrics.Wall_time; Metrics.Cpu_cycles ]
