(* The benchmark harness: regenerates every table and figure of the paper
   from one full campaign, then runs Bechamel microbenchmarks of the
   computational kernels behind each artefact.

   Knobs (environment):
     GCR_SCALE        workload scale (default 0.25 here; 1.0 = full runs)
     GCR_INVOCATIONS  invocations per configuration (default 3 here)
     GCR_BENCHMARKS   comma-separated subset of the suite
     GCR_JOBS         worker domains for the campaign (default 1 = serial;
                      any value yields bit-identical tables and figures)
     GCR_CACHE_DIR    on-disk result cache; re-running a campaign replays
                      already-measured configurations from disk
     GCR_SKIP_MICRO   set to skip the Bechamel section *)

module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Harness = Gcr_core.Harness
module Report = Gcr_core.Report
module Validate = Gcr_core.Validate
module Lbo = Gcr_core.Lbo
module Stats = Gcr_util.Stats
module Histogram = Gcr_util.Histogram
module Prng = Gcr_util.Prng

let env_default name default = Option.value (Sys.getenv_opt name) ~default

let benchmarks () =
  match Sys.getenv_opt "GCR_BENCHMARKS" with
  | None -> Suite.all
  | Some names ->
      names |> String.split_on_char ',' |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map Suite.find_exn

let banner title =
  print_newline ();
  print_endline (String.make 72 '#');
  Printf.printf "## %s\n" title;
  print_endline (String.make 72 '#')

(* ------------------------------------------------------------------ *)
(* Part 1: the campaign and the paper's artefacts                      *)
(* ------------------------------------------------------------------ *)

let run_campaign () =
  let config =
    {
      (Harness.default_config ()) with
      Harness.invocations = int_of_string (env_default "GCR_INVOCATIONS" "3");
      scale = float_of_string (env_default "GCR_SCALE" "0.25");
      log_progress = true;
    }
  in
  Printf.printf "campaign: scale=%.2f invocations=%d benchmarks=%d jobs=%d cache=%s\n%!"
    config.Harness.scale config.Harness.invocations
    (List.length (benchmarks ()))
    config.Harness.jobs
    (Option.value config.Harness.cache_dir ~default:"off");
  let t0 = Unix.gettimeofday () in
  let campaign =
    Harness.run_campaign config ~benchmarks:(benchmarks ()) ~gcs:Registry.production
  in
  Printf.printf "campaign completed in %.1fs\n%!" (Unix.gettimeofday () -. t0);
  campaign

let print_artefacts campaign =
  banner "Tables II-V: the LBO worked example (h2, 3.0x heap, cycles)";
  Report.worked_example campaign ();
  banner "Table VI: time LBO per collector and heap size";
  Report.table_vi campaign;
  banner "Table VII: cycle LBO per collector and heap size";
  Report.table_vii campaign;
  banner "Table VIII: per-benchmark time LBO at 3.0x";
  Report.table_viii campaign;
  banner "Table IX: per-benchmark cycle LBO at 3.0x";
  Report.table_ix campaign;
  banner "Table X: percent of time in STW pauses";
  Report.table_x campaign;
  banner "Table XI: percent of cycles in STW pauses";
  Report.table_xi campaign;
  banner "Figure 1: Serial vs G1 on lusearch (time and cycles vs heap)";
  Report.fig1 campaign;
  banner "Figure 2: G1 vs Shenandoah on lusearch (pause time, metered latency)";
  Report.fig2 campaign;
  banner "Figure 3: pause-time distribution, lusearch at 3.0x";
  Report.fig3 campaign;
  banner "Figure 4: metered-latency distribution, lusearch at 3.0x";
  Report.fig4 campaign;
  banner "Extensions: energy-metric LBO, confidence intervals, pause reasons, latency summary";
  Report.table_energy campaign;
  Report.confidence_note campaign;
  Report.pause_breakdown campaign;
  Report.latency_summary campaign;
  banner "Validation: LBO vs ground-truth overhead (simulator-only study)";
  Validate.tightness_study campaign ~factor:3.0;
  banner "Ablation: apparent-GC-cost attribution (paper Section III-C)";
  Validate.attribution_ablation campaign ()

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel microbenchmarks — one per table/figure kernel      *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* Synthetic inputs reused across microbenchmarks. *)
let observations =
  List.init 6 (fun i ->
      {
        Lbo.collector = Printf.sprintf "gc%d" i;
        total = 100.0 +. float_of_int (i * 17 mod 23);
        apparent_gc = 3.0 +. float_of_int (i * 7 mod 11);
      })

let grid_values = Array.init 128 (fun i -> 1.0 +. (float_of_int (i mod 17) /. 20.0))

let pause_samples = Array.init 4096 (fun i -> float_of_int (100 + (i * 7919 mod 100_000)))

let latency_histogram =
  let h = Histogram.create () in
  let prng = Prng.create 99 in
  for _ = 1 to 100_000 do
    Histogram.record h (Prng.int prng 5_000_000)
  done;
  h

let tiny_run_spec =
  {
    (Suite.find_exn "h2") with
    Spec.packets_per_thread = 30;
    mutator_threads = 2;
    long_lived_target_words = 4_000;
  }

let run_tiny gc () =
  ignore
    (Run.execute (Run.default_config ~spec:tiny_run_spec ~gc ~heap_words:30_000 ~seed:5))

let micro_tests =
  [
    (* Tables II-V: one LBO computation *)
    Test.make ~name:"tables2-5/lbo-compute"
      (Staged.stage (fun () -> ignore (Lbo.compute observations)));
    (* Tables VI-VII: geometric-mean aggregation of a grid row *)
    Test.make ~name:"table6-7/geomean"
      (Staged.stage (fun () -> ignore (Stats.geomean grid_values)));
    (* Tables VIII-IX: per-benchmark aggregation (mean + CI) *)
    Test.make ~name:"table8-9/summarize"
      (Staged.stage (fun () -> ignore (Stats.summarize grid_values)));
    (* Tables X-XI: STW-fraction style reductions *)
    Test.make ~name:"table10-11/mean"
      (Staged.stage (fun () -> ignore (Stats.mean grid_values)));
    (* Figure 1: series normalisation *)
    Test.make ~name:"fig1/normalize"
      (Staged.stage (fun () ->
           let best = Stats.min grid_values in
           ignore (Array.map (fun v -> v /. best) grid_values)));
    (* Figure 2a: mean pause *)
    Test.make ~name:"fig2a/pause-mean"
      (Staged.stage (fun () -> ignore (Stats.mean pause_samples)));
    (* Figure 2b + 4: histogram tail percentile *)
    Test.make ~name:"fig2b-4/p99.99"
      (Staged.stage (fun () -> ignore (Histogram.percentile latency_histogram 99.99)));
    (* Figure 3: exact percentile over pooled pauses *)
    Test.make ~name:"fig3/percentile"
      (Staged.stage (fun () -> ignore (Stats.percentile pause_samples 99.9)));
    (* Simulator kernels: one full tiny invocation per collector *)
    Test.make ~name:"sim/serial" (Staged.stage (run_tiny Registry.Serial));
    Test.make ~name:"sim/parallel" (Staged.stage (run_tiny Registry.Parallel));
    Test.make ~name:"sim/g1" (Staged.stage (run_tiny Registry.G1));
    Test.make ~name:"sim/shenandoah" (Staged.stage (run_tiny Registry.Shenandoah));
    Test.make ~name:"sim/zgc" (Staged.stage (run_tiny Registry.Zgc));
    Test.make ~name:"sim/epsilon" (Staged.stage (run_tiny Registry.Epsilon));
  ]

let run_micro () =
  banner "Bechamel microbenchmarks (kernels behind each artefact)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-28s %14.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-28s (no estimate)\n%!" name)
        analyzed)
    micro_tests

let run_genshen () =
  banner "Extension: generational Shenandoah (JEP 404, the paper's future work)";
  Validate.genshen_study ()

let run_ablations () =
  banner "Design-choice ablations (DESIGN.md section 4b)";
  Gcr_core.Ablation.all (Gcr_core.Ablation.default_config ())

let () =
  let campaign = run_campaign () in
  print_artefacts campaign;
  if Sys.getenv_opt "GCR_SKIP_ABLATIONS" = None then begin
    run_genshen ();
    run_ablations ()
  end;
  if Sys.getenv_opt "GCR_SKIP_MICRO" = None then run_micro ();
  banner "done"
