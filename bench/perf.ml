(* Tracked performance benchmark harness for the simulator hot paths.

   Two layers:
   - wall-clock kernels: deterministic workloads timed end-to-end, reported
     in work-units/second (or seconds for the full-run kernel).  These are
     the numbers the BENCH_<n>.json trajectory tracks PR over PR.
   - Bechamel microbenchmarks: ns/run OLS estimates for the finest kernels
     (event push/pop, object-table lookup, allocation), for diagnosis.

   Usage:
     perf.exe [--smoke] [--out FILE] [--baseline FILE] [--label TEXT]
              [--no-micro]

   --smoke      cut repetitions/sizes for CI (~15s total)
   --out        write the JSON report here (default: BENCH_<n>.json with the
                first free n in the current directory)
   --baseline   compare against a previous report; exit 1 when any shared
                wall-clock kernel regresses by more than 20%
   --no-micro   skip the Bechamel section (the JSON then carries only the
                wall-clock kernels)

   The JSON is self-describing: every entry carries its unit and direction,
   so future PRs can add kernels without breaking the comparison. *)

module Engine = Gcr_engine.Engine
module Heap = Gcr_heap.Heap
module Region = Gcr_heap.Region
module Obj_model = Gcr_heap.Obj_model
module Allocator = Gcr_heap.Allocator
module Binary_heap = Gcr_util.Binary_heap
module Tracer = Gcr_gcs.Tracer
module Gc_types = Gcr_gcs.Gc_types
module Cost_model = Gcr_mach.Cost_model
module Machine = Gcr_mach.Machine
module Registry = Gcr_gcs.Registry
module Suite = Gcr_workloads.Suite
module Spec = Gcr_workloads.Spec
module Run = Gcr_runtime.Run
module Prng = Gcr_util.Prng
module Tape = Gcr_tape.Tape
module Tape_gen = Gcr_workloads.Tape_gen
module Decision_source = Gcr_workloads.Decision_source
module Harness = Gcr_core.Harness
module Minheap = Gcr_core.Minheap
module Fabric = Gcr_sched.Fabric
module Transport = Gcr_sched.Transport

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

type options = {
  mutable smoke : bool;
  mutable out : string option;
  mutable baseline : string option;
  mutable label : string;
  mutable micro : bool;
}

let options = { smoke = false; out = None; baseline = None; label = ""; micro = true }

let parse_args () =
  let rec loop = function
    | [] -> ()
    | "--smoke" :: rest ->
        options.smoke <- true;
        loop rest
    | "--no-micro" :: rest ->
        options.micro <- false;
        loop rest
    | "--out" :: file :: rest ->
        options.out <- Some file;
        loop rest
    | "--baseline" :: file :: rest ->
        options.baseline <- Some file;
        loop rest
    | "--label" :: text :: rest ->
        options.label <- text;
        loop rest
    | arg :: _ ->
        Printf.eprintf
          "perf.exe: unknown argument %s\n\
           usage: perf.exe [--smoke] [--out FILE] [--baseline FILE] [--label TEXT] [--no-micro]\n"
          arg;
        exit 2
  in
  loop (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Result records and JSON                                             *)
(* ------------------------------------------------------------------ *)

type direction = Higher_is_better | Lower_is_better

type result = {
  name : string;
  value : float;
  unit_ : string;
  direction : direction;
  tracked : bool;  (** participates in the --baseline regression gate *)
}

let results : result list ref = ref []

let record ?(tracked = true) name value unit_ direction =
  results := { name; value; unit_; direction; tracked } :: !results;
  Printf.printf "  %-34s %14.1f %s\n%!" name value unit_

(* Minimal JSON emission; the only string fields are identifiers and units
   we control, so escaping stays simple. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json file =
  let oc = open_out file in
  let entries = List.rev !results in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"gcr-bench/1\",\n";
  Printf.fprintf oc "  \"label\": \"%s\",\n" (json_escape options.label);
  Printf.fprintf oc "  \"smoke\": %b,\n" options.smoke;
  Printf.fprintf oc "  \"results\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", \"higher_is_better\": %b, \"tracked\": %b}%s\n"
        (json_escape r.name) r.value (json_escape r.unit_)
        (r.direction = Higher_is_better)
        r.tracked
        (if i = List.length entries - 1 then "" else ",")
    )
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" file

let next_bench_file () =
  let rec free n =
    let file = Printf.sprintf "BENCH_%d.json" n in
    if Sys.file_exists file then free (n + 1) else file
  in
  free 1

(* ------------------------------------------------------------------ *)
(* Baseline comparison                                                 *)
(* ------------------------------------------------------------------ *)

(* A deliberately small JSON reader: enough for the files this harness
   writes (flat "results" array of objects with scalar fields). *)
let parse_baseline file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let entries = ref [] in
  let find_field obj field =
    let pat = Printf.sprintf "\"%s\":" field in
    let rec search from =
      if from + String.length pat > String.length obj then None
      else if String.sub obj from (String.length pat) = pat then
        Some (from + String.length pat)
      else search (from + 1)
    in
    match search 0 with
    | None -> None
    | Some start -> Some (String.trim (String.sub obj start (String.length obj - start)))
  in
  let scan_string s =
    (* s starts at the value; expects a leading quote *)
    if String.length s = 0 || s.[0] <> '"' then None
    else
      match String.index_from_opt s 1 '"' with
      | None -> None
      | Some close -> Some (String.sub s 1 (close - 1))
  in
  let scan_number s =
    let stop = ref 0 in
    let n = String.length s in
    while
      !stop < n
      && (match s.[!stop] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr stop
    done;
    if !stop = 0 then None else float_of_string_opt (String.sub s 0 !stop)
  in
  let scan_bool s =
    if String.length s >= 4 && String.sub s 0 4 = "true" then Some true
    else if String.length s >= 5 && String.sub s 0 5 = "false" then Some false
    else None
  in
  (* split on "{" at object depth 2 inside the results array *)
  (match String.index_opt text '[' with
  | None -> ()
  | Some arr_start ->
      let i = ref arr_start in
      let n = String.length text in
      while !i < n do
        if text.[!i] = '{' then begin
          (match String.index_from_opt text !i '}' with
          | None -> i := n
          | Some close ->
              let obj = String.sub text !i (close - !i + 1) in
              (match
                 ( Option.bind (find_field obj "name") scan_string,
                   Option.bind (find_field obj "value") scan_number,
                   Option.bind (find_field obj "higher_is_better") scan_bool,
                   Option.bind (find_field obj "tracked") scan_bool )
               with
              | Some name, Some value, Some hib, tracked ->
                  entries :=
                    (name, value, hib, Option.value tracked ~default:true) :: !entries
              | _ -> ());
              i := close + 1)
        end
        else incr i
      done);
  List.rev !entries

let compare_baseline file =
  let baseline = parse_baseline file in
  let tolerance = 0.20 in
  let failures = ref 0 in
  Printf.printf "\ncomparison vs %s (gate: 20%% on tracked kernels)\n" file;
  List.iter
    (fun r ->
      match List.find_opt (fun (name, _, _, _) -> name = r.name) baseline with
      | None -> Printf.printf "  %-34s (new kernel, no baseline)\n" r.name
      | Some (_, old_value, _, old_tracked) ->
          let ratio = if old_value = 0.0 then 1.0 else r.value /. old_value in
          let regressed =
            match r.direction with
            | Higher_is_better -> ratio < 1.0 -. tolerance
            | Lower_is_better -> ratio > 1.0 +. tolerance
          in
          let gated = r.tracked && old_tracked in
          let verdict =
            if regressed && gated then begin
              incr failures;
              "REGRESSION"
            end
            else if regressed then "regressed (untracked)"
            else "ok"
          in
          Printf.printf "  %-34s %8.2fx vs baseline  %s\n" r.name ratio verdict)
    (List.rev !results);
  if !failures > 0 then begin
    Printf.printf "FAILED: %d tracked kernel(s) regressed more than 20%%\n%!" !failures;
    exit 1
  end
  else Printf.printf "baseline check passed\n%!"

(* ------------------------------------------------------------------ *)
(* Wall-clock kernels                                                  *)
(* ------------------------------------------------------------------ *)

(* Repeat a deterministic kernel and keep the best rate: least-disturbed
   run, standard practice for throughput kernels. *)
let best_of reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* Event-loop throughput: one engine, [threads] mutators each chaining
   [steps] fixed-cost steps, plus a timer per step on a second clock line.
   Events/second of host time is the tracked figure. *)
let bench_event_loop ~threads ~steps ~reps =
  let total_events = ref 0 in
  let run () =
    let engine = Engine.create ~cpus:4 () in
    let spawned =
      List.init threads (fun i ->
          Engine.spawn engine ~kind:Engine.Mutator ~name:(Printf.sprintf "m%d" i))
    in
    total_events := 0;
    List.iter
      (fun th ->
        let remaining = ref steps in
        let rec step () =
          incr total_events;
          if !remaining = 0 then Engine.exit_thread engine th
          else begin
            decr remaining;
            Engine.submit engine th ~cycles:17 step
          end
        in
        Engine.submit engine th ~cycles:13 step)
      spawned;
    match Engine.run engine () with
    | Engine.All_mutators_finished -> ()
    | Engine.Aborted reason -> failwith ("bench_event_loop aborted: " ^ reason)
  in
  let dt = best_of reps run in
  float_of_int !total_events /. dt

(* Stall/timer-heavy event mix: stresses the event queue with interleaved
   priorities (stalls land ahead of steps), closer to the concurrent
   collectors' usage. *)
let bench_event_mix ~threads ~steps ~reps =
  let total_events = ref 0 in
  let run () =
    let engine = Engine.create ~cpus:2 () in
    let spawned =
      List.init threads (fun i ->
          Engine.spawn engine ~kind:Engine.Gc_worker ~name:(Printf.sprintf "w%d" i))
    in
    let sink = Engine.spawn engine ~kind:Engine.Mutator ~name:"sink" in
    total_events := 0;
    List.iter
      (fun th ->
        let remaining = ref steps in
        let rec step () =
          incr total_events;
          if !remaining = 0 then Engine.exit_thread engine th
          else begin
            decr remaining;
            if !remaining mod 3 = 0 then Engine.stall engine th ~cycles:11 step
            else Engine.submit engine th ~cycles:29 step
          end
        in
        Engine.submit engine th ~cycles:7 step)
      spawned;
    (* keep one mutator alive until the workers drain, then let it exit *)
    let rec keepalive n =
      if n = 0 then Engine.exit_thread engine sink
      else Engine.submit engine sink ~cycles:1000 (fun () -> keepalive (n - 1))
    in
    keepalive (threads * steps / 100);
    match Engine.run engine () with
    | Engine.All_mutators_finished -> ()
    | Engine.Aborted reason -> failwith ("bench_event_mix aborted: " ^ reason)
  in
  let dt = best_of reps run in
  float_of_int !total_events /. dt

(* Trace rate: a fixed object graph (geometric chains into a long-lived
   core, like the workloads build), fully traced per iteration. *)
let make_traced_heap ~objects =
  let heap = Heap.create ~capacity_words:(objects * 16 * 2) ~region_words:256 () in
  let alloc = Allocator.create heap ~space:Region.Old in
  let prng = Prng.create 7 in
  let ids = Array.make objects Obj_model.null in
  for i = 0 to objects - 1 do
    match Allocator.alloc alloc ~size:12 ~nfields:4 with
    | Allocator.Allocated { obj; _ } ->
        ids.(i) <- obj;
        (* chain to a recent object and to two random earlier ones *)
        if i > 0 then begin
          Heap.set_field heap obj 0 ids.(i - 1);
          Heap.set_field heap obj 1 ids.(Prng.int prng i);
          Heap.set_field heap obj 2 ids.(Prng.int prng i)
        end
    | Allocator.Out_of_regions -> failwith "make_traced_heap: out of regions"
  done;
  (heap, ids.(objects - 1))

let bench_trace_rate ~objects ~reps =
  let heap, root = make_traced_heap ~objects in
  let engine = Engine.create ~cpus:4 () in
  let ctx = Gc_types.make_ctx ~heap ~engine ~cost:Cost_model.default ~machine:Machine.default in
  let marked = ref 0 in
  let run () =
    let tracer =
      Tracer.create ctx ~use_scratch:false ~update_region_live:false
        ~should_visit:(fun _ -> true)
        ~on_mark:(fun _ -> 0)
    in
    ignore (Heap.begin_mark_epoch heap);
    Tracer.add_root tracer root;
    ignore (Tracer.drain tracer ~budget:max_int);
    marked := Tracer.objects_marked tracer
  in
  let dt = best_of reps run in
  (float_of_int !marked /. dt, !marked)

(* Allocation fast path: bump-allocate through an allocator until the heap
   is full, then release every region and go again. *)
let bench_alloc ~regions ~reps =
  let region_words = 256 in
  let heap = Heap.create ~capacity_words:(regions * region_words) ~region_words () in
  let count = ref 0 in
  let run () =
    let alloc = Allocator.create heap ~space:Region.Eden in
    count := 0;
    let continue_ = ref true in
    while !continue_ do
      match Allocator.alloc alloc ~size:8 ~nfields:2 with
      | Allocator.Allocated _ -> incr count
      | Allocator.Out_of_regions -> continue_ := false
    done;
    Allocator.retire alloc;
    Heap.iter_regions
      (fun r ->
        if not (Region.space_equal r.Region.space Region.Free) then
          Heap.release_region heap r)
      heap
  in
  let dt = best_of reps run in
  float_of_int !count /. dt

(* Full-run kernel: lusearch at ~3x its minimum heap, one fixed-seed
   invocation with the paper's default concurrent collector.  Seconds of
   host time, the closest proxy for campaign cost. *)
let bench_full_run ~scale ~reps =
  let spec = Spec.scale (Suite.find_exn "lusearch") scale in
  let heap_words = 36_864 in
  let run () =
    let m =
      Run.execute (Run.default_config ~spec ~gc:Registry.G1 ~heap_words ~seed:42)
    in
    match m.Gcr_runtime.Measurement.outcome with
    | Gcr_runtime.Measurement.Completed -> ()
    | Gcr_runtime.Measurement.Failed reason -> failwith ("bench_full_run failed: " ^ reason)
  in
  best_of reps run

(* Same configuration replayed from a workload tape: the image is built
   once outside the timed region, as the campaign harness does, so the
   kernel isolates the replay-mode run cost (array cursors instead of
   PRNG mixing and float math on the mutator hot path). *)
let bench_full_run_replay ~scale ~reps =
  let spec = Spec.scale (Suite.find_exn "lusearch") scale in
  let heap_words = 36_864 in
  let image = Decision_source.image_of_tape ~spec (Tape_gen.generate ~spec ~seed:42) in
  let run () =
    let m =
      Run.execute
        {
          (Run.default_config ~spec ~gc:Registry.G1 ~heap_words ~seed:42) with
          Run.tape = Run.Tape_replay image;
        }
    in
    match m.Gcr_runtime.Measurement.outcome with
    | Gcr_runtime.Measurement.Completed -> ()
    | Gcr_runtime.Measurement.Failed reason ->
        failwith ("bench_full_run_replay failed: " ^ reason)
  in
  best_of reps run

(* Raw replay-cursor throughput: consume every thread's recorded stream
   through the five decision kinds in the mutator's per-allocation mix.
   Decisions/second of host time; an upper bound on how fast replay mode
   can feed the simulator. *)
let bench_tape_decisions ~passes ~reps =
  let spec = Spec.scale (Suite.find_exn "lusearch") 0.25 in
  let tape = Tape_gen.generate ~spec ~seed:42 in
  let image = Decision_source.image_of_tape ~spec tape in
  let threads = Array.length tape.Tape.streams in
  let sink = ref 0 in
  let total = ref 0 in
  let run () =
    total := 0;
    for _ = 1 to passes do
      for t = 0 to threads - 1 do
        let ds = Decision_source.replay image ~thread:t in
        (* groups of five draws keep consumption inside the recorded
           stream (no live-PRNG fallback) *)
        let groups = Array.length tape.Tape.streams.(t).Tape.raw / 5 in
        for _ = 1 to groups do
          let size = Decision_source.draw_size ds in
          let c = if Decision_source.chain ds then 1 else 0 in
          let l = if Decision_source.ll_ref ds then 1 else 0 in
          let s = if Decision_source.survive ds then 1 else 0 in
          let idx = Decision_source.index ds 1024 in
          sink := !sink + size + c + l + s + idx
        done;
        total := !total + (groups * 5)
      done
    done
  in
  let dt = best_of reps run in
  ignore (Sys.opaque_identity !sink);
  float_of_int !total /. dt

(* Per-cell overhead of the warm path: the same small cell executed
   back-to-back N times, once through one shared Run.state (engine/heap
   reset in place) and once building everything fresh — µs/cell each
   way.  The spread is the setup cost the warm campaign path amortises;
   both ride along untracked (the tracked campaign kernels below gate
   the end-to-end effect). *)
let bench_warm_overhead ~cells ~reps =
  let spec = Spec.scale (Suite.find_exn "lusearch") 0.02 in
  let config = Run.default_config ~spec ~gc:Registry.G1 ~heap_words:36_864 ~seed:42 in
  let warm () =
    let state = Run.new_state () in
    for _ = 1 to cells do
      ignore (Run.execute ~state config)
    done
  in
  let fresh () =
    for _ = 1 to cells do
      ignore (Run.execute config)
    done
  in
  let dw = best_of reps warm in
  let df = best_of reps fresh in
  let per d = d *. 1e6 /. float_of_int cells in
  (per dw, per df)

(* Campaign throughput: one fixed grid (lusearch, the production
   collectors, several heap factors and invocations) executed through the
   multi-process fabric and through the in-process domain pool, in
   cells/second of host time.  The minheap is memoized before any timed
   region so every variant times the grid alone.

   The tracked figure is the fabric at 4 workers — the executor campaigns
   default to on multicore hosts.  The pool variants ride along untracked
   (the jobs=4 pool is throttled by cross-domain minor STW, which is the
   fabric's reason to exist; its number documents the gap rather than
   gating it). *)
let campaign_grid ~smoke =
  let spec = Suite.find_exn "lusearch" in
  let config =
    {
      (Harness.default_config ()) with
      Harness.invocations = (if smoke then 4 else 8);
      (* small cells on purpose: campaign grids are dominated by cheap
         cells (most of the heap-factor axis completes quickly), and the
         scheduling overheads this kernel tracks only show at that grain *)
      scale = 0.02;
      heap_factors = (if smoke then [ 1.9; 3.0 ] else [ 1.9; 2.4; 3.0; 4.4 ]);
      log_progress = false;
      cache_dir = None;
    }
  in
  (config, spec)

let bench_campaign ~smoke ~workers ~jobs =
  let config, spec = campaign_grid ~smoke in
  let config = { config with Harness.workers; jobs } in
  let reps = if smoke then 1 else 2 in
  (* best-of over seconds-per-cell: the host is shared, so the fastest
     rep is the least-disturbed one *)
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let campaign =
      Harness.run_campaign config ~benchmarks:[ spec ] ~gcs:Registry.production
    in
    let dt = Unix.gettimeofday () -. t0 in
    let cells = (Harness.summary campaign).Harness.cells in
    best := min !best (dt /. float_of_int cells)
  done;
  1.0 /. !best

(* The same grid over the socket transport on loopback: the coordinator
   binds an ephemeral port and the workers are forked [worker_connect]
   children with no artifact store, so every tape crosses the wire and
   every result rides a marshalled batch frame.  The spread between this
   and the pipe figure above is the TCP framing + tape-transfer tax the
   cross-host deployment pays. *)
let fork_socket_worker ~port =
  match Unix.fork () with
  | 0 ->
      (* the connect banner is progress chatter, not bench output *)
      (let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
       Unix.dup2 devnull Unix.stderr;
       Unix.close devnull);
      Unix._exit
        (match
           Fabric.worker_connect ~host:"127.0.0.1" ~port ~retry_for:20.0 ()
         with
        | Ok code -> code
        | Error msg ->
            Printf.eprintf "bench worker: %s\n%!" msg;
            3)
  | pid -> pid

let bench_dist_campaign ~smoke ~workers =
  let config, spec = campaign_grid ~smoke in
  let pids = ref [] in
  let config =
    {
      config with
      Harness.workers = Some workers;
      jobs = 1;
      listen = Some ("127.0.0.1", 0);
      connect_timeout = 30.0;
      on_listen =
        Some
          (fun port ->
            for _ = 1 to workers do
              pids := fork_socket_worker ~port :: !pids
            done);
    }
  in
  let reps = if smoke then 1 else 2 in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let campaign =
      Harness.run_campaign config ~benchmarks:[ spec ] ~gcs:Registry.production
    in
    let dt = Unix.gettimeofday () -. t0 in
    List.iter (fun pid -> ignore (Unix.waitpid [] pid)) !pids;
    pids := [];
    let cells = (Harness.summary campaign).Harness.cells in
    best := min !best (dt /. float_of_int cells)
  done;
  1.0 /. !best

(* Size-aware vs round-robin dealing on a deliberately skewed grid: six
   specs spanning a ~30x per-group cost range, three invocations each on
   four workers.  Group sizes are diverse (the classic LPT instance),
   so cost-blind plan-order dealing stacks two big groups on one worker
   while a neighbour prefetches two featherweights, and only
   tail-stealing partially recovers; size-aware dealing sorts the ready
   list by cost *and* balances queued cost across workers, so the big
   groups are spread from the start.  The residual gap is modest by
   design — queue-based dealing and prefetch stealing bound any
   straggler penalty — which is itself a property this kernel
   documents. *)
let bench_sched_skew ~smoke ~workers =
  let specs =
    List.map Suite.find_exn
      [ "jme"; "luindex"; "batik"; "fop"; "h2"; "lusearch" ]
  in
  let config =
    {
      (Harness.default_config ()) with
      Harness.invocations = 3;
      scale = 0.02;
      heap_factors = (if smoke then [ 1.9 ] else [ 1.9; 3.0 ]);
      log_progress = false;
      cache_dir = None;
      jobs = 1;
      workers = Some workers;
    }
  in
  (* settle every spec's minheap outside the timed region so the probe
     wave doesn't pollute the scheduler comparison *)
  List.iter
    (fun spec ->
      ignore
        (Minheap.find
           ~config:
             {
               Minheap.machine = config.Harness.machine;
               cost = config.Harness.cost;
               region_words = config.Harness.region_words;
               seed = config.Harness.base_seed;
               gc = Registry.G1;
               tapes = config.Harness.tapes;
             }
           (Spec.scale spec config.Harness.scale)))
    specs;
  let time sched =
    let config = { config with Harness.sched = Some sched } in
    let t0 = Unix.gettimeofday () in
    let campaign =
      Harness.run_campaign config ~benchmarks:specs ~gcs:Registry.production
    in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, (Harness.summary campaign).Harness.cells)
  in
  (* interleave the reps so slow host phases hit both schedulers alike,
     and keep the best of each: the comparison is about deal order, not
     about who drew the noisier time slice *)
  let reps = if smoke then 1 else 3 in
  let best_sa = ref infinity and best_rr = ref infinity and cells = ref 1 in
  for _ = 1 to reps do
    let dt_sa, n = time Fabric.Size_aware in
    let dt_rr, _ = time Fabric.Round_robin in
    best_sa := min !best_sa dt_sa;
    best_rr := min !best_rr dt_rr;
    cells := n
  done;
  (float_of_int !cells /. !best_sa, float_of_int !cells /. !best_rr)

(* Socket-frame overhead in isolation: a request/reply pair of modest
   frames over a Unix socketpair, both endpoints in-process.  µs per
   roundtrip (encode + checksum + write + read + verify + decode, twice);
   the floor under every fabric message that isn't a tape transfer. *)
let bench_frame_roundtrip ~frames ~reps =
  let a, z = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let req = Transport.of_socket a and rsp = Transport.of_socket z in
  let payload = String.init 512 (fun i -> Char.chr (i land 0xff)) in
  let scratch = Buffer.create 1024 in
  let run () =
    for _ = 1 to frames do
      Transport.send ~scratch req ~tag:'B' payload;
      (match Transport.recv rsp with
      | Some ('B', _) -> ()
      | _ -> failwith "frame roundtrip: bad request frame");
      Transport.send ~scratch rsp ~tag:'A' payload;
      match Transport.recv req with
      | Some ('A', _) -> ()
      | _ -> failwith "frame roundtrip: bad reply frame"
    done
  in
  let dt = best_of reps run in
  Transport.close req;
  Transport.close rsp;
  dt *. 1e6 /. float_of_int frames

let run_campaign_kernels () =
  let smoke = options.smoke in
  (* warm the in-process minheap memo outside every timed region (the
     memo key ignores machine memory, so the unscaled machine hits) *)
  let config, spec = campaign_grid ~smoke in
  let scaled = Spec.scale spec config.Harness.scale in
  ignore
    (Minheap.find
       ~config:
         {
           Minheap.machine = config.Harness.machine;
           cost = config.Harness.cost;
           region_words = config.Harness.region_words;
           seed = config.Harness.base_seed;
           gc = Registry.G1;
           tapes = config.Harness.tapes;
         }
       scaled);
  (* fabric first: OCaml forbids fork for the rest of the process once
     any domain has ever been spawned, and the jobs=4 pool spawns them.
     The cold (GCR_WARM=0) variant must also run before the pool kernels
     for the same reason. *)
  let fabric = bench_campaign ~smoke ~workers:(Some 4) ~jobs:1 in
  record "campaign/cells_per_sec" fabric "cells/s" Higher_is_better;
  record "campaign/warm_cells_per_sec" fabric "cells/s" Higher_is_better;
  Unix.putenv "GCR_WARM" "0";
  let fabric_cold = bench_campaign ~smoke ~workers:(Some 4) ~jobs:1 in
  Unix.putenv "GCR_WARM" "1";
  record ~tracked:false "campaign/cold_cells_per_sec" fabric_cold "cells/s"
    Higher_is_better;
  record ~tracked:false "campaign/warm_speedup_vs_cold" (fabric /. fabric_cold) "x"
    Higher_is_better;
  (* socket fabric and the scheduler A/B also fork — they too must stay
     ahead of the domain-spawning pool kernels *)
  let dist = bench_dist_campaign ~smoke ~workers:4 in
  record "campaign/dist_cells_per_sec" dist "cells/s" Higher_is_better;
  record ~tracked:false "campaign/dist_tax_vs_pipe" (fabric /. dist) "x"
    Lower_is_better;
  let sa, rr = bench_sched_skew ~smoke ~workers:4 in
  record ~tracked:false "campaign/sizeaware_cells_per_sec" sa "cells/s"
    Higher_is_better;
  record ~tracked:false "campaign/roundrobin_cells_per_sec" rr "cells/s"
    Higher_is_better;
  record ~tracked:false "campaign/sizeaware_speedup_vs_rr" (sa /. rr) "x"
    Higher_is_better;
  let pool_serial = bench_campaign ~smoke ~workers:None ~jobs:1 in
  record ~tracked:false "campaign/pool_j1_cells_per_sec" pool_serial "cells/s"
    Higher_is_better;
  let pool_parallel = bench_campaign ~smoke ~workers:None ~jobs:4 in
  record ~tracked:false "campaign/pool_j4_cells_per_sec" pool_parallel "cells/s"
    Higher_is_better;
  record ~tracked:false "campaign/fabric_speedup_vs_pool_j4"
    (fabric /. pool_parallel) "x" Higher_is_better

let run_wall_clock () =
  Printf.printf "wall-clock kernels (%s)\n%!" (if options.smoke then "smoke" else "full");
  let scale_steps n = if options.smoke then n / 4 else n in
  let reps = if options.smoke then 3 else 5 in
  let ev = bench_event_loop ~threads:8 ~steps:(scale_steps 120_000) ~reps in
  record "engine/events_per_sec" ev "events/s" Higher_is_better;
  let mix = bench_event_mix ~threads:6 ~steps:(scale_steps 60_000) ~reps in
  record "engine/mixed_events_per_sec" mix "events/s" Higher_is_better;
  let objects = if options.smoke then 40_000 else 160_000 in
  let rate, marked = bench_trace_rate ~objects ~reps in
  record "tracer/objects_per_sec" rate "objects/s" Higher_is_better;
  record ~tracked:false "tracer/objects_marked" (float_of_int marked) "objects"
    Higher_is_better;
  let alloc = bench_alloc ~regions:(if options.smoke then 512 else 2048) ~reps in
  record "heap/allocs_per_sec" alloc "allocs/s" Higher_is_better;
  let full = bench_full_run ~scale:0.25 ~reps:(if options.smoke then 2 else 3) in
  record "run/lusearch_3x_seconds" full "s" Lower_is_better;
  let replayed = bench_full_run_replay ~scale:0.25 ~reps:(if options.smoke then 2 else 3) in
  record "run/lusearch_3x_replay_seconds" replayed "s" Lower_is_better;
  let decisions =
    bench_tape_decisions ~passes:(if options.smoke then 4 else 16) ~reps
  in
  record "tape/decisions_per_sec" decisions "decisions/s" Higher_is_better;
  record ~tracked:false "tape/replay_draw_ns" (1e9 /. decisions) "ns/draw"
    Lower_is_better;
  let roundtrip =
    bench_frame_roundtrip ~frames:(if options.smoke then 2_000 else 10_000) ~reps
  in
  record "fabric/frame_roundtrip_us" roundtrip "us/roundtrip" Lower_is_better;
  let warm_us, fresh_us =
    bench_warm_overhead
      ~cells:(if options.smoke then 20 else 60)
      ~reps:(if options.smoke then 2 else 3)
  in
  record ~tracked:false "run/warm_cell_us" warm_us "us/cell" Lower_is_better;
  record ~tracked:false "run/fresh_cell_us" fresh_us "us/cell" Lower_is_better;
  run_campaign_kernels ()

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let heap_push_pop =
    Test.make ~name:"micro/binary_heap_push_pop"
      (Staged.stage (fun () ->
           let h = Binary_heap.create () in
           for i = 0 to 255 do
             Binary_heap.add h ~priority:(i * 7919 mod 1024) i
           done;
           while not (Binary_heap.is_empty h) do
             ignore (Binary_heap.pop h)
           done))
  in
  let table =
    let heap = Heap.create ~capacity_words:65_536 ~region_words:256 () in
    let alloc = Allocator.create heap ~space:Region.Old in
    let ids =
      Array.init 2_000 (fun _ ->
          match Allocator.alloc alloc ~size:10 ~nfields:2 with
          | Allocator.Allocated { obj; _ } -> obj
          | Allocator.Out_of_regions -> failwith "micro table setup")
    in
    Test.make ~name:"micro/heap_find_live"
      (Staged.stage (fun () ->
           let hits = ref 0 in
           Array.iter (fun id -> if Heap.is_live heap id then incr hits) ids;
           assert (!hits = Array.length ids)))
  in
  let alloc_path =
    let region_words = 256 in
    let heap = Heap.create ~capacity_words:(256 * region_words) ~region_words () in
    Test.make ~name:"micro/alloc_fast_path"
      (Staged.stage (fun () ->
           let alloc = Allocator.create heap ~space:Region.Eden in
           for _ = 1 to 512 do
             match Allocator.alloc alloc ~size:8 ~nfields:2 with
             | Allocator.Allocated _ -> ()
             | Allocator.Out_of_regions -> failwith "micro alloc out of regions"
           done;
           Allocator.retire alloc;
           Heap.iter_regions
             (fun r ->
               if not (Region.space_equal r.Region.space Region.Free) then
                 Heap.release_region heap r)
             heap))
  in
  [ heap_push_pop; table; alloc_path ]

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\nBechamel microbenchmarks\n%!";
  let quota = if options.smoke then 0.25 else 1.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  List.iter
    (fun test ->
      let benched = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance benched in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              (* microbenchmarks inform but do not gate: they are noisier
                 than the wall-clock kernels *)
              record ~tracked:false name est "ns/run" Lower_is_better
          | Some _ | None -> Printf.printf "  %-34s (no estimate)\n" name)
        analyzed)
    (micro_tests ())

(* ------------------------------------------------------------------ *)

let () =
  parse_args ();
  run_wall_clock ();
  if options.micro then run_micro ();
  let out = match options.out with Some f -> f | None -> next_bench_file () in
  write_json out;
  match options.baseline with None -> () | Some file -> compare_baseline file
